// Package eraser implements traditional lockset analysis (Savage et al.,
// TOCS'97) over the same execution traces HawkSet consumes. It is the
// ablation baseline of §3.1.1: PM-oblivious locksets attached to each access
// at the moment it executes, no effective lockset, no persistency semantics,
// no happens-before pruning, and store-store checking included (classic
// Eraser reports write-write races; HawkSet deliberately does not, §3.1.1).
//
// On PM programs this baseline exhibits exactly the failures the paper
// motivates: it misses Figure 1c (store and load share a lock, so the
// persistency escaping the critical section is invisible) and floods
// reports for initialization patterns.
package eraser

import (
	"sort"

	"hawkset/internal/lockset"
	"hawkset/internal/pmem"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// Report is one traditional lockset race: two accesses to overlapping
// memory from different threads with disjoint locksets, at least one being
// a store.
type Report struct {
	AFrame, BFrame sites.Frame
	AStore, BStore bool
	Addr           uint64
	Pairs          int
}

// Result is the analysis output.
type Result struct {
	Reports []Report
	Records int
}

type record struct {
	tid   int32
	addr  uint64
	size  uint32
	site  sites.ID
	ls    lockset.ID
	store bool
	count uint64
}

type recKey struct {
	tid   int32
	addr  uint64
	size  uint32
	site  sites.ID
	ls    lockset.ID
	store bool
}

// Analyze runs traditional lockset analysis over a trace.
func Analyze(tr *trace.Trace) *Result {
	ls := lockset.NewTable()
	threads := map[int32]lockset.Set{}
	recs := map[recKey]*record{}
	var order []*record

	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KLockAcq:
			threads[e.TID] = threads[e.TID].Add(e.Lock, 0)
		case trace.KLockRel:
			threads[e.TID] = threads[e.TID].Remove(e.Lock)
		case trace.KStore, trace.KNTStore, trace.KLoad:
			key := recKey{
				tid: e.TID, addr: e.Addr, size: e.Size, site: e.Site,
				ls:    ls.Intern(threads[e.TID]),
				store: e.Kind != trace.KLoad,
			}
			if r, ok := recs[key]; ok {
				r.count++
				continue
			}
			r := &record{tid: key.tid, addr: key.addr, size: key.size,
				site: key.site, ls: key.ls, store: key.store, count: 1}
			recs[key] = r
			order = append(order, r)
		}
	}

	// Bucket by cache line, pair up, report disjoint locksets.
	buckets := map[uint64][]*record{}
	for _, r := range order {
		size := r.size
		if size == 0 {
			size = 1
		}
		for l := pmem.LineOf(r.addr); l <= pmem.LineOf(r.addr+uint64(size)-1); l++ {
			buckets[l] = append(buckets[l], r)
		}
	}
	lineKeys := make([]uint64, 0, len(buckets))
	for l := range buckets {
		lineKeys = append(lineKeys, l)
	}
	sort.Slice(lineKeys, func(i, j int) bool { return lineKeys[i] < lineKeys[j] })

	type pairSeen struct{ a, b *record }
	seen := map[pairSeen]struct{}{}
	reports := map[[2]sites.ID]*Report{}
	for _, l := range lineKeys {
		b := buckets[l]
		for i, ra := range b {
			for _, rb := range b[i+1:] {
				if ra.tid == rb.tid || (!ra.store && !rb.store) {
					continue
				}
				if !overlaps(ra.addr, ra.size, rb.addr, rb.size) {
					continue
				}
				pk := pairSeen{ra, rb}
				if _, dup := seen[pk]; dup {
					continue
				}
				seen[pk] = struct{}{}
				if !lockset.DisjointLocks(ls.Get(ra.ls), ls.Get(rb.ls)) {
					continue
				}
				key := [2]sites.ID{ra.site, rb.site}
				rep := reports[key]
				if rep == nil {
					rep = &Report{
						AFrame: tr.Sites.Lookup(ra.site), BFrame: tr.Sites.Lookup(rb.site),
						AStore: ra.store, BStore: rb.store, Addr: ra.addr,
					}
					reports[key] = rep
				}
				rep.Pairs++
			}
		}
	}
	res := &Result{Records: len(order)}
	for _, r := range reports {
		res.Reports = append(res.Reports, *r)
	}
	sort.Slice(res.Reports, func(i, j int) bool {
		a, b := res.Reports[i], res.Reports[j]
		if a.AFrame.String() != b.AFrame.String() {
			return a.AFrame.String() < b.AFrame.String()
		}
		return b.BFrame.String() > a.BFrame.String()
	})
	return res
}

func overlaps(aAddr uint64, aSize uint32, bAddr uint64, bSize uint32) bool {
	if aSize == 0 {
		aSize = 1
	}
	if bSize == 0 {
		bSize = 1
	}
	return aAddr < bAddr+uint64(bSize) && bAddr < aAddr+uint64(aSize)
}

// Has reports whether a race between the two named sites (in either order)
// was reported.
func (r *Result) Has(siteA, siteB string) bool {
	for _, rep := range r.Reports {
		a, b := rep.AFrame.String(), rep.BFrame.String()
		if (a == siteA && b == siteB) || (a == siteB && b == siteA) {
			return true
		}
	}
	return false
}
