package eraser

import (
	"testing"

	"hawkset/internal/trace"
)

// TestMissesFigure1c: traditional lockset analysis cannot see the
// persistency escaping the critical section (§3.1.1).
func TestMissesFigure1c(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock")
	b.Persist(1, X, 8, "t1.persist")
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")

	res := Analyze(b.T)
	if res.Has("t1.store", "t2.load") {
		t.Fatal("traditional analysis should miss the Figure 1c persistency race")
	}
}

// TestDetectsClassicRace: a plain unlocked store/load pair is still found.
func TestDetectsClassicRace(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Store(1, X, 8, "t1.store")
	b.Load(2, X, 8, "t2.load")

	res := Analyze(b.T)
	if !res.Has("t1.store", "t2.load") {
		t.Fatalf("classic race missed; reports = %v", res.Reports)
	}
}

// TestReportsStoreStore: unlike HawkSet, Eraser checks write-write pairs.
func TestReportsStoreStore(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Store(1, X, 8, "t1.store")
	b.Store(2, X, 8, "t2.store")

	res := Analyze(b.T)
	if !res.Has("t1.store", "t2.store") {
		t.Fatalf("store-store race missed; reports = %v", res.Reports)
	}
}

// TestProtectedAccessesSilent: common lock ⇒ no report.
func TestProtectedAccessesSilent(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Lock(1, A, "l").Store(1, X, 8, "t1.store").Unlock(1, A, "u")
	b.Lock(2, A, "l").Load(2, X, 8, "t2.load").Unlock(2, A, "u")

	res := Analyze(b.T)
	if len(res.Reports) != 0 {
		t.Fatalf("protected accesses reported: %v", res.Reports)
	}
}

// TestNoHappensBeforeFilter: Eraser reports even ordered (create/join)
// accesses — the false-positive class HawkSet's vector clocks remove.
func TestNoHappensBeforeFilter(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Store(0, X, 8, "main.init")
	b.Persist(0, X, 8, "main.persist")
	b.Create(0, 1, "create")
	b.Load(1, X, 8, "t1.load")
	b.Join(0, 1, "join")

	res := Analyze(b.T)
	if !res.Has("main.init", "t1.load") {
		t.Fatal("Eraser has no HB filter; the ordered pair should be (wrongly) reported")
	}
}

// TestLoadLoadIgnored: two loads never race.
func TestLoadLoadIgnored(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Load(1, X, 8, "t1.load")
	b.Load(2, X, 8, "t2.load")

	res := Analyze(b.T)
	if len(res.Reports) != 0 {
		t.Fatalf("load-load pair reported: %v", res.Reports)
	}
}

// TestDedup: repeated identical accesses collapse into one record.
func TestDedup(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Store(1, X, 8, "t1.store")
		b.Load(2, X, 8, "t2.load")
	}
	res := Analyze(b.T)
	if res.Records != 2 {
		t.Fatalf("Records = %d, want 2", res.Records)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("Reports = %v, want one deduplicated report", res.Reports)
	}
}
