// Package durinn implements an operation-level adversarial-interleaving
// detector modeled on Durinn (Fu et al., OSDI'22), the second
// state-of-the-art tool HawkSet is compared against (§6.3).
//
// Durinn targets durable-linearizability bugs in key-value stores: it
// serializes the execution, extracts likely-racy *operation pairs* (a
// mutating operation and a reading operation on the same key), and for each
// pair forces adversarial interleavings by placing breakpoints inside the
// writer and running the reader at every breakpoint, checking whether the
// reader observes visible-but-unpersisted state.
//
// The design's two structural properties — it requires key-value operation
// semantics (application-specific drivers), and its cost multiplies
// per-pair executions by per-operation breakpoints — are exactly what the
// paper's efficiency and agnosticism critiques describe: "While this
// approach works well for small workloads, it quickly becomes impractical
// for large workloads" (§6.3). Findings are reported at operation
// granularity, which is why §5.1 cannot confirm Durinn's reports equal
// HawkSet's PM-access-level reports.
package durinn

import (
	"fmt"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/pmrt"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"
)

// Config bounds the search.
type Config struct {
	Seed int64
	// MaxPairs caps the number of operation pairs tested.
	MaxPairs int
	// MaxBreakpoints caps the breakpoints explored inside one writer
	// operation.
	MaxBreakpoints int
	// EvictAfter models the hardware cache's background writeback, as in the
	// PMRace baseline: windows usually close by accident on real PM.
	EvictAfter int
}

// DefaultConfig mirrors the published tool's bounded adversarial search.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, MaxPairs: 24, MaxBreakpoints: 24, EvictAfter: 70}
}

// Finding is one operation-level report: reader observed unpersisted state
// of writer at some breakpoint. Frames record the underlying PM accesses for
// cross-checking against HawkSet's reports (the real Durinn does not emit
// them; §5.1).
type Finding struct {
	Writer, Reader ycsb.OpKind
	Key            uint64
	Breakpoint     int
	StoreFrame     sites.Frame
	LoadFrame      sites.Frame
}

// Result summarizes one campaign.
type Result struct {
	Findings   []Finding
	PairsTried int
	Executions int
	Elapsed    time.Duration
}

// Detect runs the operation-pair search against the buggy variant of a
// key-value application. The workload supplies the load phase (the
// serialized history Durinn replays) and the candidate operations.
func Detect(e *apps.Entry, w *ycsb.Workload, cfg Config) (*Result, error) {
	start := time.Now()
	res := &Result{}

	pairs := candidatePairs(w, cfg.MaxPairs)
	seen := map[string]bool{}
	for _, pr := range pairs {
		res.PairsTried++
		// Measure the writer operation's instrumented length on a pristine
		// replica (Durinn's serialized pre-run).
		n, err := writerLength(e, w, pr.writer, cfg)
		if err != nil {
			return nil, err
		}
		res.Executions++
		if n > cfg.MaxBreakpoints {
			n = cfg.MaxBreakpoints
		}
		// Adversarial phase: re-execute with the writer paused before its
		// k-th instrumented operation while the reader runs to completion.
		for k := 1; k <= n; k++ {
			f, err := probeBreakpoint(e, w, pr, k, cfg)
			if err != nil {
				return nil, err
			}
			res.Executions++
			if f != nil {
				key := fmt.Sprintf("%v/%v/%s/%s", f.Writer, f.Reader, f.StoreFrame, f.LoadFrame)
				if !seen[key] {
					seen[key] = true
					res.Findings = append(res.Findings, *f)
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type pair struct {
	writer, reader ycsb.Op
}

// candidatePairs extracts likely-racy operation pairs: a mutating op and a
// get on the same key (Durinn's likely-linearizability-violating pairs).
func candidatePairs(w *ycsb.Workload, max int) []pair {
	writers := map[uint64]ycsb.Op{}
	for _, ops := range w.Threads {
		for _, op := range ops {
			switch op.Kind {
			case ycsb.OpInsert, ycsb.OpUpdate, ycsb.OpDelete, ycsb.OpSet:
				if _, ok := writers[op.Key]; !ok {
					writers[op.Key] = op
				}
			}
		}
	}
	var out []pair
	for _, ops := range w.Threads {
		for _, op := range ops {
			if op.Kind != ycsb.OpGet {
				continue
			}
			if wop, ok := writers[op.Key]; ok {
				out = append(out, pair{writer: wop, reader: op})
				delete(writers, op.Key) // one pair per key
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// writerLength replays the load phase and counts the writer operation's
// instrumented events.
func writerLength(e *apps.Entry, w *ycsb.Workload, wop ycsb.Op, cfg Config) (int, error) {
	rt := newRuntime(e, cfg, 0)
	app := e.Factory(rt, false)
	n := 0
	err := rt.Run(func(c *pmrt.Ctx) {
		app.Setup(c)
		for _, op := range w.Load {
			app.Apply(c, op)
		}
		count := 0
		rt.BeforeOp = func(*pmrt.Ctx, trace.Kind, uint64, uint32) { count++ }
		app.Apply(c, wop)
		rt.BeforeOp = nil
		n = count
	})
	return n, err
}

// probeBreakpoint re-executes the load phase, starts the writer on its own
// thread, pauses it before its k-th instrumented operation, runs the reader
// to completion, and reports any dirty read the reader observed.
func probeBreakpoint(e *apps.Entry, w *ycsb.Workload, pr pair, k int, cfg Config) (*Finding, error) {
	rt := newRuntime(e, cfg, int64(k))
	app := e.Factory(rt, false)
	var finding *Finding
	err := rt.Run(func(c *pmrt.Ctx) {
		app.Setup(c)
		for _, op := range w.Load {
			app.Apply(c, op)
		}
		count := 0
		var writerTh *pmrt.Thread
		rt.BeforeOp = func(wc *pmrt.Ctx, _ trace.Kind, _ uint64, _ uint32) {
			if wc.TID() != 0 {
				count++
				if count == k {
					wc.Park("durinn-breakpoint")
				}
			}
		}
		writerTh = c.Spawn(func(wc *pmrt.Ctx) {
			app.Apply(wc, pr.writer)
		})
		// Drive the writer to its breakpoint (or completion for short ops).
		for i := 0; i < 4*k+16 && !writerTh.Parked(); i++ {
			c.Yield()
		}
		// Reader runs now, with the observer armed.
		st := rt.Trace.Sites
		rt.OnDirtyRead = func(_ *pmrt.Ctx, loadSite sites.ID, _ uint64, _ uint32, _ int32, storeSite sites.ID) {
			if finding == nil {
				finding = &Finding{
					Writer: pr.writer.Kind, Reader: pr.reader.Kind, Key: pr.reader.Key,
					Breakpoint: k,
					StoreFrame: st.Lookup(storeSite), LoadFrame: st.Lookup(loadSite),
				}
			}
		}
		app.Apply(c, pr.reader)
		rt.OnDirtyRead = nil
		rt.BeforeOp = nil
		if writerTh.Parked() {
			c.Unpark(writerTh)
		}
		c.Join(writerTh)
	})
	return finding, err
}

func newRuntime(e *apps.Entry, cfg Config, salt int64) *pmrt.Runtime {
	poolSize := e.PoolSize
	if poolSize == 0 {
		poolSize = 32 << 20
	}
	return pmrt.New(pmrt.Config{
		Seed:         cfg.Seed + salt*104729,
		PoolSize:     poolSize,
		NoTrace:      true,
		TrackWriters: true,
		EvictAfter:   cfg.EvictAfter,
	})
}
