package durinn

import (
	"strings"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/pmasstree"
)

func smallWorkload(seed int64) *ycsb.Workload {
	spec := ycsb.DefaultSpec(200)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	return ycsb.Generate(spec, seed)
}

// TestFindsAlwaysOnBug: P-Masstree's bug #5 (every put publishes an
// unpersisted entry) is exactly the durable-linearizability violation
// Durinn's operation-level search excels at: some breakpoint inside a put
// exposes the unpersisted value to a get on the same key.
func TestFindsAlwaysOnBug(t *testing.T) {
	e, err := apps.Lookup("P-Masstree")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(e, smallWorkload(3), DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("no findings over %d pairs / %d executions", res.PairsTried, res.Executions)
	}
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f.StoreFrame.Func, "putValue") {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug #5 (putValue) not among findings: %+v", res.Findings)
	}
}

// TestCostMultiplies: the execution count is pairs × breakpoints shaped —
// the §6.3 efficiency critique in numbers.
func TestCostMultiplies(t *testing.T) {
	e, err := apps.Lookup("P-Masstree")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.MaxPairs = 4
	cfg.MaxBreakpoints = 6
	res, err := Detect(e, smallWorkload(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsTried == 0 {
		t.Fatal("no candidate pairs extracted")
	}
	// Per pair: one serialized pre-run plus up to MaxBreakpoints probes.
	if res.Executions < res.PairsTried*2 {
		t.Fatalf("executions = %d for %d pairs — breakpoint exploration missing", res.Executions, res.PairsTried)
	}
	if res.Executions > res.PairsTried*(cfg.MaxBreakpoints+1) {
		t.Fatalf("executions = %d exceed the pairs×breakpoints budget", res.Executions)
	}
}

// TestMissesRareBranchBug: Fast-Fair's bug #2 lives on the tree-growth
// branch, which never executes inside the probed operation pairs of a small
// workload — operation-level adversarial search cannot reach what the
// serialized history does not cover, while HawkSet's lockset analysis flags
// it from the same workload (§5.2).
func TestMissesRareBranchBug(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(7)
	cfg.MaxPairs = 8
	res, err := Detect(e, smallWorkload(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if strings.Contains(f.StoreFrame.Func, "growRoot") {
			t.Fatalf("operation-level search unexpectedly reached the root-growth branch: %+v", f)
		}
	}
}

// TestCandidatePairsSameKey: extracted pairs always share the key.
func TestCandidatePairsSameKey(t *testing.T) {
	w := smallWorkload(11)
	for _, p := range candidatePairs(w, 100) {
		if p.writer.Key != p.reader.Key {
			t.Fatalf("pair keys differ: %d vs %d", p.writer.Key, p.reader.Key)
		}
		if p.reader.Kind != ycsb.OpGet {
			t.Fatalf("reader is %v, want get", p.reader.Kind)
		}
	}
}
