// Package bench holds the benchmark harness that regenerates the paper's
// evaluation (one testing.B benchmark per table and figure, §5) plus
// ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the analysis substrate.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The benchmarks report custom metrics alongside time:
// races/op (reports), events/op (trace size), and for Figure 6b peak-B/op
// (heap high-water mark). Paper-scale parameters are available through
// cmd/experiments; the benches use laptop-scale sizes with the same shape.
package bench

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/baseline/durinn"
	"hawkset/internal/baseline/eraser"
	"hawkset/internal/baseline/pmrace"
	"hawkset/internal/hawkset"
	"hawkset/internal/lockset"
	"hawkset/internal/pmrt"
	"hawkset/internal/trace"
	"hawkset/internal/vclock"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2BugDetection measures the full detect cycle (instrumented
// execution + analysis) per application — the workflow behind Table 2.
func BenchmarkTable2BugDetection(b *testing.B) {
	for _, e := range apps.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			ops := 2000
			if e.MaxOps > 0 && ops > e.MaxOps {
				ops = e.MaxOps
			}
			var reports int
			for i := 0; i < b.N; i++ {
				res, err := apps.Detect(e, ops, 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "races/op")
		})
	}
}

// ---------------------------------------------------------------- Table 3

// BenchmarkTable3PerSeedCost measures each tool's per-seed-workload cost on
// Fast-Fair: the "Avg. Time per Execution" column of Table 3. The
// expected-time-to-race ratio follows from these costs and the per-seed
// detection rates (cmd/experiments -table3).
func BenchmarkTable3PerSeedCost(b *testing.B) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		b.Fatal(err)
	}
	seeds := ycsb.Seeds(8, 1000)

	b.Run("HawkSet", func(b *testing.B) {
		found := 0
		for i := 0; i < b.N; i++ {
			w := seeds[i%len(seeds)]
			rt, err := apps.Run(e, w, apps.RunConfig{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
			found += len(apps.FoundBugs(e, res))
		}
		b.ReportMetric(float64(found)/float64(b.N), "bugs/op")
	})
	b.Run("PMRace", func(b *testing.B) {
		found := 0
		for i := 0; i < b.N; i++ {
			w := seeds[i%len(seeds)]
			cfg := pmrace.DefaultConfig(int64(i))
			res, err := pmrace.Detect(e, w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.MatchesBug(e.Bugs[0].StoreFunc, e.Bugs[0].LoadFunc) {
				found++
			}
		}
		b.ReportMetric(float64(found)/float64(b.N), "bugs/op")
	})
}

// ---------------------------------------------------------------- Figure 6

// BenchmarkFig6aTestingTime sweeps workload sizes: ns/op is Figure 6a's
// testing time; events/op shows the sublinear trace growth driving it.
func BenchmarkFig6aTestingTime(b *testing.B) {
	for _, e := range apps.All() {
		for _, ops := range []int{1000, 10000} {
			if e.MaxOps > 0 && ops > e.MaxOps {
				continue
			}
			e, ops := e, ops
			b.Run(benchName(e.Name, ops), func(b *testing.B) {
				var events int
				for i := 0; i < b.N; i++ {
					w := ycsb.Generate(e.Spec(ops), 42)
					rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
					if err != nil {
						b.Fatal(err)
					}
					res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
					events = res.Stats.Events
				}
				b.ReportMetric(float64(events), "events/op")
			})
		}
	}
}

// BenchmarkFig6bPeakMemory reports the heap high-water mark of one detect
// cycle per application — Figure 6b's peak memory.
func BenchmarkFig6bPeakMemory(b *testing.B) {
	for _, e := range apps.All() {
		e := e
		ops := 10000
		if e.MaxOps > 0 && ops > e.MaxOps {
			ops = e.MaxOps
		}
		b.Run(e.Name, func(b *testing.B) {
			var peak uint64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				w := ycsb.Generate(e.Spec(ops), 42)
				rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				_ = hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				if after.HeapAlloc > before.HeapAlloc {
					peak = after.HeapAlloc - before.HeapAlloc
				}
			}
			b.ReportMetric(float64(peak), "peak-B/op")
		})
	}
}

// ---------------------------------------------------------------- Table 4

// BenchmarkTable4IRH measures the analysis with the Initialization Removal
// Heuristic on and off: races/op shows the pruning (Table 4's After-IRH vs
// Reported columns), ns/op the cost of the heuristic itself.
func BenchmarkTable4IRH(b *testing.B) {
	e, err := apps.Lookup("Memcached-pmem")
	if err != nil {
		b.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(4000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	for _, irh := range []bool{true, false} {
		irh := irh
		name := "on"
		if !irh {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := hawkset.DefaultConfig()
			cfg.IRH = irh
			var reports int
			for i := 0; i < b.N; i++ {
				res := hawkset.Analyze(rt.Trace, cfg)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "races/op")
		})
	}
}

// -------------------------------------------------------------- Ablations

// BenchmarkAblations re-analyzes one Fast-Fair trace with each design
// feature disabled, quantifying what every §3 mechanism contributes
// (races/op moves; ns/op shows each feature's cost).
func BenchmarkAblations(b *testing.B) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		b.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(4000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*hawkset.Config)
	}{
		{"full", func(c *hawkset.Config) {}},
		{"no-effective-lockset", func(c *hawkset.Config) { c.EffectiveLockset = false }},
		{"no-timestamps", func(c *hawkset.Config) { c.Timestamps = false }},
		{"no-hb-filter", func(c *hawkset.Config) { c.HBFilter = false }},
		{"no-irh", func(c *hawkset.Config) { c.IRH = false }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := hawkset.DefaultConfig()
			tc.mut(&cfg)
			var reports int
			for i := 0; i < b.N; i++ {
				res := hawkset.Analyze(rt.Trace, cfg)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "races/op")
		})
	}
}

// BenchmarkEraserBaseline runs the traditional (PM-oblivious) lockset
// analysis over the same trace, the §3.1.1 contrast.
func BenchmarkEraserBaseline(b *testing.B) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		b.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(4000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	var reports int
	for i := 0; i < b.N; i++ {
		res := eraser.Analyze(rt.Trace)
		reports = len(res.Reports)
	}
	b.ReportMetric(float64(reports), "races/op")
}

// ------------------------------------------------------- Micro-benchmarks

// BenchmarkAnalysisThroughput measures trace events analyzed per second,
// the scalability driver of Figure 6a.
func BenchmarkAnalysisThroughput(b *testing.B) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		b.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(10000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
	}
	b.ReportMetric(float64(rt.Trace.Len()), "events/op")
}

// BenchmarkParallelAnalysis sweeps the stage-③ worker count on 100k-op
// workloads. Workers=1 is the sequential reference path; the sharded runs
// produce byte-identical reports (see parallel_test.go), so any speedup is
// free accuracy-wise.
func BenchmarkParallelAnalysis(b *testing.B) {
	for _, name := range []string{"Fast-Fair", "Memcached-pmem"} {
		e, err := apps.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		ops := 100000
		if e.MaxOps > 0 && ops > e.MaxOps {
			ops = e.MaxOps
		}
		w := ycsb.Generate(e.Spec(ops), 42)
		rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(benchName(e.Name, ops)+"/workers="+strconv.Itoa(workers), func(b *testing.B) {
				cfg := hawkset.DefaultConfig()
				cfg.Workers = workers
				var reports int
				for i := 0; i < b.N; i++ {
					res := hawkset.Analyze(rt.Trace, cfg)
					reports = len(res.Reports)
				}
				b.ReportMetric(float64(reports), "races/op")
			})
		}
		// The full-VC reference path (epochs off), single worker: the cost of
		// the exact fallback the epoch fast path is measured against.
		b.Run(benchName(e.Name, ops)+"/reference", func(b *testing.B) {
			cfg := hawkset.DefaultConfig()
			cfg.Workers = 1
			cfg.Epochs = false
			var reports int
			for i := 0; i < b.N; i++ {
				res := hawkset.Analyze(rt.Trace, cfg)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "races/op")
		})
	}
}

// BenchmarkLocksetIntersect measures the hot inner loop of Algorithm 1.
func BenchmarkLocksetIntersect(b *testing.B) {
	a := lockset.Set{}.Add(1, 1).Add(3, 2).Add(7, 3).Add(9, 4)
	c := lockset.Set{}.Add(2, 1).Add(3, 9).Add(8, 2).Add(9, 1)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lockset.IntersectExact(a, c)
		}
	})
	b.Run("locks-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lockset.IntersectLocks(a, c)
		}
	})
	b.Run("disjoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lockset.DisjointLocks(a, c)
		}
	})
}

// BenchmarkVClockOps measures the happens-before primitives.
func BenchmarkVClockOps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v1 := make(vclock.VC, 9)
	v2 := make(vclock.VC, 9)
	for i := range v1 {
		v1[i] = uint32(rng.Intn(100))
		v2[i] = uint32(rng.Intn(100))
	}
	b.Run("leq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vclock.Leq(v1, v2)
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vclock.Concurrent(v1, v2)
		}
	})
	b.Run("intern", func(b *testing.B) {
		tab := vclock.NewTable()
		for i := 0; i < b.N; i++ {
			tab.Intern(v1)
		}
	})
}

// BenchmarkInstrumentation measures the per-operation cost of the
// instrumented runtime (the PIN-substitute overhead).
func BenchmarkInstrumentation(b *testing.B) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 24})
	err := rt.Run(func(c *pmrt.Ctx) {
		a := c.Alloc(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Store8(a, uint64(i))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rt.Trace.Len()), "events")
}

// BenchmarkTraceCodec measures binary trace encode/decode throughput per
// format version on the same 100k-op workloads BenchmarkParallelAnalysis
// uses — the capture-once/analyze-many IO cost. bytes/op via -benchmem (the
// encoded size is reported as trace-B/op), decode MB/s via SetBytes.
func BenchmarkTraceCodec(b *testing.B) {
	versions := []struct {
		name string
		opts trace.Options
	}{
		{"v1", trace.Options{Version: 1}},
		{"v2", trace.Options{Version: 2}},
		{"v2-flate", trace.Options{Version: 2, Compress: true}},
	}
	for _, name := range []string{"Fast-Fair", "Memcached-pmem"} {
		e, err := apps.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		ops := 100000
		if e.MaxOps > 0 && ops > e.MaxOps {
			ops = e.MaxOps
		}
		w := ycsb.Generate(e.Spec(ops), 42)
		rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range versions {
			v := v
			var enc bytes.Buffer
			if err := trace.EncodeWith(&enc, rt.Trace, v.opts); err != nil {
				b.Fatal(err)
			}
			raw := enc.Bytes()
			b.Run("encode/"+benchName(e.Name, ops)+"/"+v.name, func(b *testing.B) {
				b.SetBytes(int64(len(raw)))
				for i := 0; i < b.N; i++ {
					var sink countWriter
					if err := trace.EncodeWith(&sink, rt.Trace, v.opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(raw)), "trace-B/op")
			})
			b.Run("decode/"+benchName(e.Name, ops)+"/"+v.name, func(b *testing.B) {
				b.SetBytes(int64(len(raw)))
				for i := 0; i < b.N; i++ {
					if _, err := trace.Decode(bytes.NewReader(raw)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rt.Trace.Len()), "events/op")
			})
		}
	}
}

func benchName(app string, ops int) string {
	return app + "/" + strconv.Itoa(ops)
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// BenchmarkBacktraceOverhead quantifies the cost of deep backtraces vs the
// default single-frame capture — the reproduction's version of §4's
// PIN_Backtrace "up to 90% overhead" measurement.
func BenchmarkBacktraceOverhead(b *testing.B) {
	for _, deep := range []bool{false, true} {
		name := "single-frame"
		if deep {
			name = "deep-backtrace"
		}
		deep := deep
		b.Run(name, func(b *testing.B) {
			rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 24, Backtraces: deep})
			err := rt.Run(func(c *pmrt.Ctx) {
				a := c.Alloc(64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Store8(a, uint64(i))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDurinnBaseline measures the operation-level baseline's per-seed
// cost on a small workload — the §6.3 three-tool cost comparison's third
// column (see also BenchmarkTable3PerSeedCost).
func BenchmarkDurinnBaseline(b *testing.B) {
	e, err := apps.Lookup("P-Masstree")
	if err != nil {
		b.Fatal(err)
	}
	spec := ycsb.DefaultSpec(200)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	w := ycsb.Generate(spec, 3)
	cfg := durinn.DefaultConfig(3)
	cfg.MaxPairs = 4
	cfg.MaxBreakpoints = 8
	findings := 0
	for i := 0; i < b.N; i++ {
		res, err := durinn.Detect(e, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		findings = len(res.Findings)
	}
	b.ReportMetric(float64(findings), "findings/op")
}
