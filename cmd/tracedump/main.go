// Command tracedump decodes and inspects a binary HawkSet trace file
// captured with `hawkset -trace-out` (either format version).
//
// Usage:
//
//	tracedump trace.hwkt            # summary
//	tracedump -events trace.hwkt   # full event listing with sites
//	tracedump -head 50 trace.hwkt  # first 50 events
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hawkset/internal/trace"
)

func main() {
	var (
		events = flag.Bool("events", false, "print every event")
		head   = flag.Int("head", 0, "print only the first N events")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-events|-head N] <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	dec, err := trace.NewDecoder(f)
	if err != nil {
		fatal(err)
	}

	// One streaming pass: summary counters always, event lines only while
	// below the -head/-events cutoff. The trace is never held in memory.
	listing := *events || *head > 0
	counts := make(map[trace.Kind]int)
	nevents, maxTID := 0, int32(-1)
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if listing && (*head <= 0 || nevents < *head) {
			fmt.Printf("%7d %-40s %s\n", nevents, e.String(), dec.Sites().Lookup(e.Site))
		}
		counts[e.Kind]++
		nevents++
		if e.TID > maxTID {
			maxTID = e.TID
		}
		if (e.Kind == trace.KThreadCreate || e.Kind == trace.KThreadJoin) && e.Kid > maxTID {
			maxTID = e.Kid
		}
	}

	if listing {
		fmt.Println()
	}
	fmt.Printf("trace: format v%d, %d events, %d threads, %d sites\n",
		dec.Version(), nevents, maxTID+1, dec.Sites().Len()-1)
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, counts[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
