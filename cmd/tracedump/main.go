// Command tracedump decodes and inspects a binary HawkSet trace file
// captured with `hawkset -trace-out`.
//
// Usage:
//
//	tracedump trace.hwkt            # summary
//	tracedump -events trace.hwkt   # full event listing with sites
//	tracedump -head 50 trace.hwkt  # first 50 events
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hawkset/internal/trace"
)

func main() {
	var (
		events = flag.Bool("events", false, "print every event")
		head   = flag.Int("head", 0, "print only the first N events")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-events|-head N] <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %d events, %d threads, %d sites\n", tr.Len(), tr.Threads(), tr.Sites.Len()-1)
	counts := tr.Counts()
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, counts[k])
	}

	if *events || *head > 0 {
		n := tr.Len()
		if *head > 0 && *head < n {
			n = *head
		}
		fmt.Println()
		for i := 0; i < n; i++ {
			e := tr.Events[i]
			fmt.Printf("%7d %-40s %s\n", i, e.String(), tr.Sites.Lookup(e.Site))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
