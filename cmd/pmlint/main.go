// Command pmlint statically checks code written against the instrumented PM
// runtime API (internal/pmrt) for the misuse classes HawkSet hunts
// dynamically, plus reproduction-specific determinism hazards:
//
//	missing-persist   store with no reachable flush+fence/persist
//	flush-no-fence    flush that can reach function exit unfenced
//	lock-imbalance    lock/unlock mismatch along some path
//	empty-lockset     lock-free access to a field locked elsewhere
//	scheduler-bypass  native Go concurrency inside internal/apps/...
//
// Usage:
//
//	pmlint ./...                                 # lint the whole module
//	pmlint -baseline pmlint.baseline ./...       # fail only on NEW findings
//	pmlint -json ./...                           # machine-readable output
//	pmlint -write-baseline pmlint.baseline ./... # record current findings
//
// Exit status: 0 = no (new) findings, 1 = findings, 2 = usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hawkset/internal/pmlint"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline file of known findings; only new findings fail")
		writePath    = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
		jsonOut      = flag.Bool("json", false, "emit findings as JSON")
		appsPrefix   = flag.String("apps-prefix", "hawkset/internal/apps", "package-path prefix where scheduler-bypass applies")
		verbose      = flag.Bool("v", false, "also list baseline-suppressed findings and stale baseline entries")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	findings, err := pmlint.Run(wd, patterns, pmlint.Config{AppsPrefix: *appsPrefix})
	if err != nil {
		fatal(err)
	}

	if *writePath != "" {
		f, err := os.Create(*writePath)
		if err != nil {
			fatal(err)
		}
		if err := pmlint.WriteBaseline(f, findings); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pmlint: wrote %d findings to %s\n", len(findings), *writePath)
		return
	}

	toShow := findings
	if *baselinePath != "" {
		bl, err := pmlint.ReadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var suppressed []pmlint.Finding
		toShow, suppressed = bl.Filter(findings)
		if *verbose {
			for _, f := range suppressed {
				fmt.Fprintf(os.Stderr, "pmlint: suppressed: %s\n", f)
			}
			for _, k := range bl.Unused(findings) {
				fmt.Fprintf(os.Stderr, "pmlint: stale baseline entry: %s\n", k)
			}
		}
	}

	if *jsonOut {
		if toShow == nil {
			toShow = []pmlint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toShow); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range toShow {
			fmt.Println(f)
		}
	}
	if len(toShow) > 0 {
		if *baselinePath != "" {
			fmt.Fprintf(os.Stderr, "pmlint: %d new finding(s) not in baseline %s\n", len(toShow), *baselinePath)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmlint:", err)
	os.Exit(2)
}
