// Command pmcheckd runs the trace-ingestion daemon: a long-running service
// that accepts concurrent trace streams from instrumented application
// instances (pmcheck -remote, or any internal/pmcheckd client), analyzes
// each stream online with HawkSet's PM-Aware Lockset Analysis, and persists
// every segment to a crash-safe per-tenant log so clients resume across
// disconnects and the daemon resumes across restarts.
//
// Usage:
//
//	pmcheckd -listen 127.0.0.1:7099 -dir /var/tmp/pmcheckd
//	pmcheckd -listen unix:/tmp/pmcheckd.sock -max-events 2000000
//
// SIGTERM or SIGINT drains gracefully: accepting stops, every received
// segment is applied and durable, metrics are flushed, and the process
// exits 0 with every stream either finished (report produced) or
// checkpointed (resumable by the next daemon process from the same -dir).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/obscli"
	"hawkset/internal/pmcheckd"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7099", "listen address: host:port or unix:/path/to.sock")
		dir        = flag.String("dir", "pmcheckd-store", "segment-store directory (per-tenant durable logs)")
		maxEvents  = flag.Uint64("max-events", 0, "per-tenant event budget (0 = unlimited)")
		queueDepth = flag.Int("queue", 8, "per-tenant credit window (segments in flight)")
		maxTenants = flag.Int("max-tenants", 64, "maximum concurrently known tenants")
		tenantTab  = flag.Bool("tenant-table", false, "print a per-tenant metrics table to stderr at exit")
		quiet      = flag.Bool("quiet", false, "suppress operational log lines")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fatal(err)
	}
	metrics := obsFlags.Registry()
	if metrics == nil {
		// The daemon always keeps its own counters: the drain summary and
		// -tenant-table read them even when no -metrics output is requested.
		metrics = obs.NewRegistry()
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmcheckd: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	srv, err := pmcheckd.NewServer(pmcheckd.Config{
		Dir:                *dir,
		Analysis:           hawkset.DefaultConfig(),
		MaxEventsPerTenant: *maxEvents,
		QueueDepth:         *queueDepth,
		MaxTenants:         *maxTenants,
		Metrics:            metrics,
		Logf:               logf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := listenAddr(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pmcheckd: listening on %s (store %s)\n", *listen, *dir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	drainErr := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "pmcheckd: %s: draining\n", sig)
		drainErr <- srv.Drain()
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	// Serve returned nil: Drain closed the listener. Wait for the drain to
	// finish applying every durable segment before reporting and exiting.
	if err := <-drainErr; err != nil {
		fatal(err)
	}

	if *tenantTab {
		printTenantTable(srv)
	}
	if err := obsFlags.Dump(metrics); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "pmcheckd: drained cleanly")
}

// listenAddr opens the daemon listener: "unix:/path" for a unix socket
// (removing a stale socket file from a previous run), anything else TCP.
func listenAddr(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if _, err := os.Stat(path); err == nil {
			// A previous daemon left its socket behind; a live daemon would
			// still be listening, so probe before unlinking.
			if c, err := net.Dial("unix", path); err == nil {
				c.Close()
				return nil, fmt.Errorf("pmcheckd: %s: already in use", path)
			}
			os.Remove(path) //nolint:errcheck // Listen will report any real problem
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// printTenantTable renders one line per tenant with its ingest counters and
// the analysis working-set gauges — the bounded-RSS instrument.
func printTenantTable(srv *pmcheckd.Server) {
	names := srv.TenantNames()
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%-24s %12s %12s %12s %14s %12s\n",
		"TENANT", "SEGMENTS", "EVENTS", "DUPS", "OPEN-STORES", "LINES")
	for _, name := range names {
		snap := srv.TenantSnapshot(name)
		if snap == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-24s %12d %12d %12d %14d %12d\n",
			name,
			snap.Counter("pmcheckd.tenant.segments"),
			snap.Counter("pmcheckd.tenant.events"),
			snap.Counter("pmcheckd.tenant.dup_segments"),
			snap.GaugeMax("hawkset.replay.open_stores"),
			snap.GaugeMax("hawkset.replay.lines"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcheckd:", err)
	os.Exit(101)
}
