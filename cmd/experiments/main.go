// Command experiments regenerates the paper's evaluation tables and figures
// (HawkSet, EuroSys 2025, §5) from the reproduction.
//
// Usage:
//
//	experiments -table2            # the 20 detected races
//	experiments -table3 -seeds 60  # PMRace comparison (240 seeds = paper scale)
//	experiments -fig6              # time/memory vs workload size
//	experiments -table4            # IRH effectiveness
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hawkset/internal/apps"
	"hawkset/internal/baseline/durinn"
	"hawkset/internal/crashinject"
	"hawkset/internal/expmt"
	"hawkset/internal/obscli"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	var (
		t2    = flag.Bool("table2", false, "run the bug-detection experiment (Table 2)")
		t3    = flag.Bool("table3", false, "run the PMRace comparison (Table 3)")
		t4    = flag.Bool("table4", false, "run the IRH classification (Table 4)")
		dur   = flag.Bool("durinn", false, "run the Durinn-style operation-level baseline (qualitative, §6.3)")
		auto  = flag.Bool("automation", false, "print the §5.5 automation/agnosticism table")
		f6    = flag.Bool("fig6", false, "run the scalability sweep (Figure 6)")
		crash = flag.Bool("crash", false, "run the crash-point fault-injection sweep (app x strategy)")
		crOps = flag.Int("crash-ops", 0, "workload size for the crash sweep (0 = per-app Table 2 sizes)")
		opt     = flag.Bool("opt", false, "run the flush/fence redundancy analysis and gated elimination (pmopt)")
		optOps  = flag.Int("opt-ops", 0, "workload size for the optimization sweep (0 = per-app Table 2 sizes)")
		optApps = flag.String("opt-apps", "", "comma-separated app names for the optimization sweep (empty = all)")
		tfmt    = flag.Bool("tracefmt", false, "compare trace format versions (size, encode/decode throughput)")
		tfmtOps = flag.Int("tracefmt-ops", 100000, "workload size for the trace-format comparison")
		all   = flag.Bool("all", false, "run everything")
		seeds = flag.Int("seeds", 240, "seed-corpus size for Table 3 (paper: 240)")
		sizes = flag.String("sizes", "1000,10000,100000", "workload sizes for Figure 6")
		seed  = flag.Int64("seed", 42, "base seed")
		wrk      = flag.Int("workers", 0, "stage ③ analysis goroutines (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		progress = flag.Bool("progress", false, "print periodic crash-campaign progress lines to stderr")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		check(err)
	}
	metrics := obsFlags.Registry()
	expmt.AnalysisWorkers = *wrk
	expmt.Metrics = metrics
	if !*t2 && !*t3 && !*t4 && !*f6 && !*dur && !*auto && !*crash && !*opt && !*tfmt && !*all {
		flag.Usage()
		os.Exit(2)
	}

	if *t2 || *all {
		fmt.Println("== Table 2: persistency-induced races detected ==")
		rows, err := expmt.Table2(*seed)
		check(err)
		fmt.Println(expmt.FormatTable2(rows))
		found := 0
		for _, r := range rows {
			if r.Found {
				found++
			}
		}
		fmt.Printf("detected %d/%d paper bugs (7 new: #2,#3,#16-#20)\n\n", found, len(rows))
	}

	if *f6 || *all {
		fmt.Println("== Figure 6: testing time and peak memory vs workload size ==")
		var ns []int
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			check(err)
			ns = append(ns, n)
		}
		pts, err := expmt.Fig6(ns, *seed)
		check(err)
		fmt.Println(expmt.FormatFig6(pts))
	}

	if *t4 || *all {
		fmt.Println("== Table 4: Initialization Removal Heuristic ==")
		rows, err := expmt.Table4(*seed)
		check(err)
		fmt.Println(expmt.FormatTable4(rows))
	}

	if *crash || *all {
		fmt.Println("== Crash-point fault injection: points tested/failed per strategy ==")
		cfg := expmt.DefaultCrashTableConfig()
		cfg.Seed = *seed
		cfg.Ops = *crOps
		cfg.Metrics = metrics
		if *progress {
			cfg.OnProgress = func(p crashinject.Progress) {
				if p.Done {
					return // the table row reports the final numbers
				}
				fmt.Fprintf(os.Stderr, "experiments: %s %s campaign %d/%d points (%.1f pts/s)\n",
					p.Target, p.Strategy, p.Tested, p.Selected, p.PointsPerSec)
			}
		}
		rows, err := expmt.CrashTable(cfg)
		check(err)
		fmt.Println(expmt.FormatCrashTable(rows))
	}

	if *opt || *all {
		fmt.Println("== Flush/fence redundancy: candidates and gated elimination (pmopt) ==")
		cfg := expmt.DefaultOptTableConfig()
		cfg.Seed = *seed
		cfg.Ops = *optOps
		if *optApps != "" {
			for _, n := range strings.Split(*optApps, ",") {
				cfg.Apps = append(cfg.Apps, strings.TrimSpace(n))
			}
		}
		rows, err := expmt.OptTable(cfg)
		check(err)
		fmt.Println(expmt.FormatOptTable(rows))
	}

	if *tfmt || *all {
		fmt.Println("== Trace format: size and codec throughput per version ==")
		rows, err := expmt.TraceFmt([]string{"Fast-Fair", "Memcached-pmem"}, *tfmtOps, *seed)
		check(err)
		fmt.Println(expmt.FormatTraceFmt(rows))
	}

	if *auto || *all {
		fmt.Println("== §5.5 automation and application-agnosticism ==")
		fmt.Println(expmt.FormatAutomation(expmt.Automation()))
	}

	if *dur {
		fmt.Println("== Durinn-style operation-level baseline (§6.3) ==")
		for _, name := range []string{"P-Masstree", "Fast-Fair"} {
			e, err := apps.Lookup(name)
			check(err)
			spec := ycsb.DefaultSpec(400)
			spec.LoadCount = 150
			spec.KeySpace = 1 << 12
			w := ycsb.Generate(spec, *seed)
			res, err := durinn.Detect(e, w, durinn.DefaultConfig(*seed))
			check(err)
			fmt.Printf("%-12s pairs=%d executions=%d findings=%d elapsed=%s\n",
				name, res.PairsTried, res.Executions, len(res.Findings), res.Elapsed.Round(10e6))
			for i, f := range res.Findings {
				if i >= 5 {
					fmt.Printf("  ... and %d more\n", len(res.Findings)-i)
					break
				}
				fmt.Printf("  %v/%v key=%d bp=%d  store %s / load %s\n",
					f.Writer, f.Reader, f.Key, f.Breakpoint, f.StoreFrame, f.LoadFrame)
			}
		}
		fmt.Println("note: cost = pairs x breakpoints executions, each replaying the load")
		fmt.Println("phase; the same workloads take HawkSet one execution (Table 3).")
		fmt.Println()
	}

	if *t3 || *all {
		fmt.Printf("== Table 3: comparison with the observation-based baseline (%d seeds) ==\n", *seeds)
		cfg := expmt.DefaultTable3Config()
		cfg.Seeds = *seeds
		res, err := expmt.Table3(cfg)
		check(err)
		fmt.Println(expmt.FormatTable3(res))
	}

	check(obsFlags.Dump(metrics))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
