// Command pmopt reports redundant flush/fence operations in a registered
// application by joining static CFG analysis (internal/pmlint/cfgir) with a
// byte-precise replay of the recorded device-op journal, and optionally
// applies the top-confidence eliminations behind a crash-differential
// safety gate.
//
// Usage:
//
//	pmopt -app P-ART                 # report candidates (text)
//	pmopt -app P-ART -json           # deterministic JSON document
//	pmopt -app P-Masstree -apply     # elide static+dynamic sites, run gates
//	pmopt -list                      # registered application names
//
// Exit status: 0 = analysis (and, with -apply, every safety gate) OK,
// 1 = a gate failed, 2 = usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/pmopt"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	var (
		appName = flag.String("app", "", "registered application name (see -list)")
		list    = flag.Bool("list", false, "list registered applications and exit")
		ops     = flag.Int("ops", 1000, "workload size (main-phase operations)")
		seed    = flag.Int64("seed", 42, "workload and scheduler seed")
		jsonOut = flag.Bool("json", false, "emit the report as deterministic JSON")
		apply   = flag.Bool("apply", false, "elide the static+dynamic sites and run the safety gates")
		budget  = flag.Int("budget", 32, "crash points per gate campaign with -apply")
		dir     = flag.String("dir", ".", "directory inside the module (roots the static source loader)")
	)
	flag.Parse()

	if *list {
		for _, e := range apps.All() {
			fmt.Println(e.Name)
		}
		return
	}
	if *appName == "" {
		flag.Usage()
		os.Exit(2)
	}
	entry, err := apps.Lookup(*appName)
	if err != nil {
		fatal(err)
	}

	res, err := pmopt.AnalyzeApp(*dir, entry, *ops, *seed)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := res.Doc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		if err := res.Doc.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if !*apply {
		return
	}
	if len(res.Eliminable) == 0 {
		fmt.Fprintf(os.Stderr, "pmopt: %s has no static+dynamic site to apply\n", entry.Name)
		return
	}
	ar, err := pmopt.Apply(entry, *ops, *seed, res.Eliminable, crashinject.Config{Seed: *seed, Budget: *budget})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pmopt: elided %d site(s): flushes %d->%d, fences %d->%d, sweep %d points\n",
		len(ar.Sites), ar.BaselineFlushes, ar.OptFlushes, ar.BaselineFences, ar.OptFences, ar.SweepTested)
	if !ar.OK() {
		for _, p := range ar.Problems {
			fmt.Fprintf(os.Stderr, "pmopt: gate failed: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pmopt: all safety gates held")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmopt:", err)
	os.Exit(2)
}
