// Command hawkset runs a registered PM application under the instrumented
// runtime, applies HawkSet's PM-Aware Lockset Analysis to the recorded
// trace, and prints the persistency-induced race reports.
//
// Usage:
//
//	hawkset -app Fast-Fair -ops 10000 -seed 42
//	hawkset -app Memcached-pmem -ops 100000 -no-irh -stats
//	hawkset -app WIPE -trace-out wipe.hwkt        # capture a trace
//	hawkset -trace-in wipe.hwkt                   # re-analyze it later
//	hawkset -list                                 # show the application suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/obscli"
	"hawkset/internal/report"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	var (
		appName  = flag.String("app", "Fast-Fair", "application to test (see -list)")
		ops      = flag.Int("ops", 10000, "main-phase operations (8 threads)")
		seed     = flag.Int64("seed", 42, "workload and schedule seed")
		fixed    = flag.Bool("fixed", false, "run the defect-free variant")
		noIRH    = flag.Bool("no-irh", false, "disable the Initialization Removal Heuristic")
		noEff    = flag.Bool("no-effective-lockset", false, "ablation: traditional per-access locksets")
		noTS     = flag.Bool("no-timestamps", false, "ablation: untimestamped locksets")
		noHB     = flag.Bool("no-hb", false, "ablation: disable the happens-before filter")
		ss       = flag.Bool("store-store", false, "experimental: also report write-write pairs (classic Eraser behavior; §3.1.1 explains why HawkSet does not)")
		anaEADR  = flag.Bool("analysis-eadr", false, "analyze under eADR semantics (the §2.1 ablation: the race class is empty)")
		eadr     = flag.Bool("eadr", false, "run the device with a persistent cache (eADR)")
		workers  = flag.Int("workers", 0, "stage ③ analysis goroutines (0 = GOMAXPROCS, 1 = sequential); any value yields identical reports")
		stats    = flag.Bool("stats", false, "print analysis statistics")
		jsonOut  = flag.String("json", "", "write a machine-readable JSON report to this file (\"-\" for stdout)")
		list     = flag.Bool("list", false, "list registered applications and exit")
		wlIn     = flag.String("workload", "", "run this workload file instead of generating one")
		wlOut    = flag.String("workload-out", "", "save the generated workload to this file (reproducible corpus artifact)")
		traceOut = flag.String("trace-out", "", "write the captured trace to this file (format v2 by default)")
		traceIn  = flag.String("trace-in", "", "skip execution; analyze this trace file (v1 or v2, auto-detected)")
		traceFmt = flag.Int("trace-format", 2, "trace format version for -trace-out (1 or 2)")
		traceZip = flag.Bool("trace-compress", false, "flate-compress v2 trace blocks for -trace-out")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fatal(err)
	}
	metrics := obsFlags.Registry()

	if *list {
		fmt.Println("Registered applications (Table 1):")
		for _, e := range apps.All() {
			fmt.Printf("  %-15s %d seeded bug(s)\n", e.Name, len(e.Bugs))
		}
		return
	}

	cfg := hawkset.DefaultConfig()
	cfg.IRH = !*noIRH
	cfg.EffectiveLockset = !*noEff
	cfg.Timestamps = !*noTS
	cfg.HBFilter = !*noHB
	cfg.StoreStore = *ss
	cfg.EADR = *anaEADR
	cfg.Workers = *workers
	cfg.Metrics = metrics

	var entry *apps.Entry
	var res *hawkset.Result
	if *traceIn != "" {
		// A stored trace carries no application identity, so classification
		// is available only when -app is given explicitly; the report is then
		// labeled exactly as the in-process run would label it.
		if flagWasSet("app") {
			var err error
			entry, err = apps.Lookup(*appName)
			if err != nil {
				fatal(err)
			}
		}
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		dec, err := trace.NewDecoder(f)
		if err != nil {
			fatal(err)
		}
		// Stream decode → analysis: events flow straight into the stage-①/②
		// pipeline; the trace is never materialized as a []Event.
		st := hawkset.NewStream(dec.Sites(), cfg)
		nevents := 0
		maxTID := int32(-1)
		for {
			e, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			nevents++
			if e.TID > maxTID {
				maxTID = e.TID
			}
			if (e.Kind == trace.KThreadCreate || e.Kind == trace.KThreadJoin) && e.Kid > maxTID {
				maxTID = e.Kid
			}
			if err := st.Feed(e); err != nil {
				fatal(err)
			}
		}
		f.Close()
		fmt.Printf("loaded trace (format v%d): %d events, %d threads\n", dec.Version(), nevents, maxTID+1)
		if res, err = st.Finish(); err != nil {
			fatal(err)
		}
		fmt.Printf("analysis: %v, %d store records, %d load records, %d pairs checked\n",
			time.Since(start).Round(time.Millisecond),
			res.Stats.StoreRecords, res.Stats.LoadRecords, res.Stats.PairsChecked)
	} else {
		var tr *trace.Trace
		var err error
		entry, err = apps.Lookup(*appName)
		if err != nil {
			fatal(err)
		}
		n := *ops
		if entry.MaxOps > 0 && n > entry.MaxOps {
			fmt.Printf("note: %s is capped at %d operations (§5)\n", entry.Name, entry.MaxOps)
			n = entry.MaxOps
		}
		var w *ycsb.Workload
		if *wlIn != "" {
			f, err := os.Open(*wlIn)
			if err != nil {
				fatal(err)
			}
			w, err = ycsb.Load(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("loaded workload %s: %d load ops, %d main ops, %d threads\n",
				w.Name, len(w.Load), w.TotalOps(), len(w.Threads))
		} else {
			w = ycsb.Generate(entry.Spec(n), *seed)
		}
		if *wlOut != "" {
			f, err := os.Create(*wlOut)
			if err != nil {
				fatal(err)
			}
			if err := ycsb.Save(f, w); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("workload written to %s\n", *wlOut)
		}
		start := time.Now()
		rt, err := apps.Run(entry, w, apps.RunConfig{Seed: *seed, Fixed: *fixed, EADR: *eadr, Metrics: metrics})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %s: %d ops, %d trace events in %v\n",
			entry.Name, w.TotalOps(), rt.Trace.Len(), time.Since(start).Round(time.Millisecond))
		tr = rt.Trace
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			opts := trace.Options{Version: *traceFmt, Compress: *traceZip}
			if err := trace.EncodeWith(f, tr, opts); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (format v%d)\n", *traceOut, *traceFmt)
		}

		start = time.Now()
		res = hawkset.Analyze(tr, cfg)
		fmt.Printf("analysis: %v, %d store records, %d load records, %d pairs checked\n",
			time.Since(start).Round(time.Millisecond),
			res.Stats.StoreRecords, res.Stats.LoadRecords, res.Stats.PairsChecked)
	}

	if *jsonOut != "" {
		var classify report.Classifier
		workload := fmt.Sprintf("ycsb ops=%d seed=%d", *ops, *seed)
		appName := ""
		if entry != nil {
			appName = entry.Name
			classify = func(r hawkset.Report) string { return entry.Classify(r).String() }
		}
		doc := report.New(res, appName, workload, classify)
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := doc.WriteJSON(out); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Printf("JSON report written to %s\n", *jsonOut)
		}
	}

	fmt.Printf("\n%d persistency-induced race report(s):\n", len(res.Reports))
	for i, r := range res.Reports {
		class := ""
		if entry != nil {
			class = " [" + entry.Classify(r).String() + "]"
		}
		fmt.Printf("%3d. %s%s\n", i+1, r, class)
	}
	if entry != nil {
		if found := apps.FoundBugs(entry, res); len(found) > 0 {
			fmt.Printf("\nmatched paper bugs (Table 2): %v\n", found)
		}
	}
	if *stats {
		s := res.Stats
		fmt.Printf("\nstatistics:\n")
		fmt.Printf("  events              %d\n", s.Events)
		fmt.Printf("  PM accesses         %d\n", s.PMAccesses)
		fmt.Printf("  dynamic stores      %d (deduped to %d records)\n", s.DynamicStores, s.StoreRecords)
		fmt.Printf("  dynamic loads       %d (deduped to %d records)\n", s.DynamicLoads, s.LoadRecords)
		fmt.Printf("  IRH dropped         %d stores, %d loads\n", s.IRHDroppedStores, s.IRHDroppedLoads)
		fmt.Printf("  unpersisted at end  %d\n", s.UnpersistedAtEnd)
		fmt.Printf("  locksets interned   %d\n", s.LocksetsInterned)
		fmt.Printf("  vclocks interned    %d\n", s.VClocksInterned)
		fmt.Printf("  pairs checked       %d (HB-filtered %d, lock-protected %d)\n",
			s.PairsChecked, s.PairsHBFiltered, s.PairsLockFiltered)
	}
	if err := obsFlags.Dump(metrics); err != nil {
		fatal(err)
	}
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hawkset:", err)
	os.Exit(1)
}
