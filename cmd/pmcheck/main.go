// Command pmcheck runs a workload against an application and validates the
// crash image — the post-crash consistency check (in the spirit of PMRace's
// second stage) that turns HawkSet's race reports into demonstrated bugs.
// With -inject it additionally runs the crash-point fault-injection
// campaign (internal/crashinject): the recorded execution is replayed to
// every selected crash point, and each materialized crash image is
// validated and driven through the application's recovery path.
//
// Usage:
//
//	pmcheck -app Fast-Fair -ops 4000            # buggy variant: violations
//	pmcheck -app Fast-Fair -ops 4000 -fixed     # control: clean image
//	pmcheck -all                                # every app with a validator
//	pmcheck -app Fast-Fair -inject              # + targeted crash campaign
//	pmcheck -all -inject -strategy fence -json  # machine-readable output
//
// With -remote, pmcheck instead streams the instrumented execution's trace
// events to a pmcheckd daemon (see cmd/pmcheckd) and prints the race report
// the daemon produced — the fleet-ingestion client path. -verify
// additionally retains the trace locally, runs the offline analysis, and
// fails unless the daemon's document is byte-identical:
//
//	pmcheck -remote 127.0.0.1:7099 -app Fast-Fair -ops 4000
//	pmcheck -remote unix:/tmp/pmcheckd.sock -app WIPE -verify
//
// Exit status: 0 when every checked application is consistent (or, with
// -remote, when streaming and -verify succeeded); otherwise the number of
// failing applications (capped at 100). Usage and runtime errors exit 101.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/obscli"
	"hawkset/internal/pmcheckd"
	"hawkset/internal/report"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	var (
		appName  = flag.String("app", "Fast-Fair", "application to check")
		ops      = flag.Int("ops", 4000, "main-phase operations")
		seed     = flag.Int64("seed", 42, "workload and schedule seed")
		fixed    = flag.Bool("fixed", false, "run the defect-free variant")
		all      = flag.Bool("all", false, "check every application that implements crash validation")
		maxShow  = flag.Int("show", 10, "violations to print per application")
		inject   = flag.Bool("inject", false, "run the crash-point fault-injection campaign")
		strategy = flag.String("strategy", "targeted", "crash-point strategy: fence, flush, store or targeted")
		budget   = flag.Int("budget", 0, "crash points tested per campaign (0 = default, negative = unlimited)")
		deadline = flag.Duration("deadline", 0, "wall-clock bound per campaign (0 = none)")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON document")
		progress = flag.Bool("progress", false, "print a periodic campaign progress line to stderr")
		remote   = flag.String("remote", "", "stream trace events to this pmcheckd address (host:port or unix:/path) instead of crash-checking")
		tenant   = flag.String("tenant", "", "tenant name for -remote (default: derived from app and seed)")
		verify   = flag.Bool("verify", false, "with -remote: also analyze offline and require a byte-identical report")
		compress = flag.Bool("compress", false, "with -remote: flate-compress segment payloads on the wire")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fatal(err)
	}
	metrics := obsFlags.Registry()

	if *remote != "" {
		if err := runRemote(*remote, *tenant, *appName, *ops, *seed, *fixed, *verify, *compress, *jsonOut, metrics); err != nil {
			fatal(err)
		}
		if err := obsFlags.Dump(metrics); err != nil {
			fatal(err)
		}
		return
	}

	strat, err := crashinject.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	entries := apps.All()
	if !*all {
		e, err := apps.Lookup(*appName)
		if err != nil {
			fatal(err)
		}
		entries = []*apps.Entry{e}
	}

	stratName := ""
	if *inject {
		stratName = strat.String()
	}
	campCfg := crashinject.Config{
		Strategy: strat, Budget: *budget, Deadline: *deadline, Seed: *seed,
		Metrics: metrics,
	}
	if *progress {
		campCfg.OnProgress = printProgress
	}
	doc := report.NewCrashDocument(stratName)
	for _, e := range entries {
		c, err := checkOne(e, *ops, *seed, *fixed, *inject, metrics, campCfg)
		if err != nil {
			if *all {
				doc.Checks = append(doc.Checks, report.CrashCheck{
					Application: e.Name, Fixed: *fixed, Skipped: err.Error(),
				})
				continue
			}
			fatal(err)
		}
		doc.Checks = append(doc.Checks, *c)
	}

	if *jsonOut {
		err = doc.WriteJSON(os.Stdout)
	} else {
		err = doc.WriteText(os.Stdout, *maxShow)
	}
	if err != nil {
		fatal(err)
	}
	if err := obsFlags.Dump(metrics); err != nil {
		fatal(err)
	}
	failed := doc.FailedApps()
	if failed > 100 {
		failed = 100
	}
	os.Exit(failed)
}

// printProgress renders one campaign progress sample as a stderr status
// line. Progress is presentation-only; nothing here reaches the document.
func printProgress(p crashinject.Progress) {
	eta := ""
	if p.ETA > 0 {
		eta = fmt.Sprintf(", eta %s", p.ETA.Round(time.Second))
	}
	state := "..."
	if p.Done {
		state = "done"
	}
	fmt.Fprintf(os.Stderr, "pmcheck: %s %s campaign %s %d/%d points (%d failed, %.1f pts/s%s)\n",
		p.Target, p.Strategy, state, p.Tested, p.Selected, p.Failed, p.PointsPerSec, eta)
}

// checkOne validates one application: the end-of-run crash image always,
// plus the fault-injection campaign when requested.
func checkOne(e *apps.Entry, ops int, seed int64, fixed, inject bool, metrics *obs.Registry, cfg crashinject.Config) (*report.CrashCheck, error) {
	violations, err := apps.RunAndValidate(e, ops, seed, apps.RunConfig{Seed: seed, Fixed: fixed, Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("no crash validator: %w", err)
	}
	c := &report.CrashCheck{
		Application: e.Name, Fixed: fixed,
		Violations: violations,
		Failed:     len(violations) > 0,
	}
	if !inject {
		return c, nil
	}
	prep, err := crashinject.Prepare(e, ops, seed, fixed)
	if err != nil {
		return nil, err
	}
	camp, err := crashinject.RunCampaign(prep.Target(0), cfg)
	if err != nil {
		return nil, err
	}
	c.Campaign = camp
	if camp.Failed > 0 {
		c.Failed = true
	}
	return c, nil
}

// runRemote executes one instrumented run with its trace streamed live to a
// pmcheckd daemon (the fleet-client path): every event goes through the
// network EventSink, the daemon analyzes at ingest, and the final report
// document comes back over the same connection. With verify the trace is
// additionally retained locally and analyzed offline; the two documents
// must be byte-identical — the end-to-end form of the differential
// invariant the pmcheckd tests enforce.
func runRemote(addr, tenant, appName string, ops int, seed int64, fixed, verify, compress, jsonOut bool, metrics *obs.Registry) error {
	entry, err := apps.Lookup(appName)
	if err != nil {
		return err
	}
	n := ops
	if entry.MaxOps > 0 && n > entry.MaxOps {
		n = entry.MaxOps
	}
	w := ycsb.Generate(entry.Spec(n), seed)
	workload := fmt.Sprintf("ycsb ops=%d seed=%d", ops, seed)
	if tenant == "" {
		tenant = fmt.Sprintf("%s-seed%d", entry.Name, seed)
	}

	// Without -verify the trace is not retained at all: the daemon is the
	// only consumer, which is the memory-bounded fleet configuration.
	rt := apps.NewRuntime(entry, apps.RunConfig{Seed: seed, Fixed: fixed, NoTrace: !verify, Metrics: metrics})
	client, err := pmcheckd.NewClient(rt.Trace.Sites, pmcheckd.ClientConfig{
		Addr:     addr,
		Tenant:   tenant,
		App:      entry.Name,
		Workload: workload,
		Compress: compress,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pmcheck: remote: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := client.Connect(); err != nil {
		return err
	}
	rt.EventSink = client.Feed
	app := entry.Factory(rt, fixed)
	if err := apps.RunOn(rt, app, w); err != nil {
		return err
	}
	doc, err := client.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pmcheck: daemon report for tenant %s: %d bytes\n", tenant, len(doc))

	if verify {
		res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
		var local bytes.Buffer
		if err := report.New(res, entry.Name, workload, nil).WriteJSON(&local); err != nil {
			return err
		}
		if !bytes.Equal(doc, local.Bytes()) {
			return fmt.Errorf("daemon report differs from offline analysis (%d vs %d bytes)", len(doc), local.Len())
		}
		fmt.Fprintln(os.Stderr, "pmcheck: verified: daemon report byte-identical to offline analysis")
	}
	if jsonOut {
		if _, err := os.Stdout.Write(doc); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcheck:", err)
	os.Exit(101)
}
