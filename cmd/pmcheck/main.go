// Command pmcheck runs a workload against an application and validates the
// crash image — the post-crash consistency check (in the spirit of PMRace's
// second stage) that turns HawkSet's race reports into demonstrated bugs.
//
// Usage:
//
//	pmcheck -app Fast-Fair -ops 4000          # buggy variant: violations
//	pmcheck -app Fast-Fair -ops 4000 -fixed   # control: clean image
//	pmcheck -all                              # every app with a validator
package main

import (
	"flag"
	"fmt"
	"os"

	"hawkset/internal/apps"

	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	var (
		appName = flag.String("app", "Fast-Fair", "application to check")
		ops     = flag.Int("ops", 4000, "main-phase operations")
		seed    = flag.Int64("seed", 42, "workload and schedule seed")
		fixed   = flag.Bool("fixed", false, "run the defect-free variant")
		all     = flag.Bool("all", false, "check every application that implements crash validation")
		maxShow = flag.Int("show", 10, "violations to print per application")
	)
	flag.Parse()

	entries := apps.All()
	if !*all {
		e, err := apps.Lookup(*appName)
		if err != nil {
			fatal(err)
		}
		entries = []*apps.Entry{e}
	}

	exit := 0
	for _, e := range entries {
		violations, err := apps.RunAndValidate(e, *ops, *seed, apps.RunConfig{Seed: *seed, Fixed: *fixed})
		if err != nil {
			if *all {
				fmt.Printf("%-15s (no crash validator)\n", e.Name)
				continue
			}
			fatal(err)
		}
		if len(violations) == 0 {
			fmt.Printf("%-15s crash image CONSISTENT\n", e.Name)
			continue
		}
		exit = 1
		fmt.Printf("%-15s crash image CORRUPT: %d violation(s)\n", e.Name, len(violations))
		for i, v := range violations {
			if i >= *maxShow {
				fmt.Printf("    ... and %d more\n", len(violations)-i)
				break
			}
			fmt.Printf("    %s\n", v)
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcheck:", err)
	os.Exit(1)
}
