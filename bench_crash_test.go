package bench

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
)

// BenchmarkCrashInjection measures the fault-injection campaign's
// throughput in crash points per second: each point costs an incremental
// journal replay, a reboot-clone of the device, validation, and a full
// recovery run on the crash image. The recording and analysis are done
// once outside the timer — their cost is the usual testing-time story
// (Figure 6); the campaign is the new per-point cost on top.
func BenchmarkCrashInjection(b *testing.B) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		b.Fatal(err)
	}
	prep, err := crashinject.Prepare(e, 1000, 7, false)
	if err != nil {
		b.Fatal(err)
	}
	target := prep.Target(0)
	cfg := crashinject.Config{Strategy: crashinject.AfterFence, Budget: 32, Seed: 7}
	b.ResetTimer()
	points := 0
	for i := 0; i < b.N; i++ {
		camp, err := crashinject.RunCampaign(target, cfg)
		if err != nil {
			b.Fatal(err)
		}
		points += camp.Tested
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(points)/secs, "points/sec")
	}
	b.ReportMetric(float64(points)/float64(b.N), "points/op")
}
