#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   go vet      static checks
#   go build    every package compiles
#   go test     full unit + property + differential suite
#   go test -race   the packages with concurrency: the sharded stage ③
#                   analysis (internal/hawkset, exercised from the root
#                   package's app-workload differential test), the
#                   cooperative scheduler (internal/sched), and the
#                   ingestion daemon (internal/pmcheckd: concurrent
#                   tenants, fault-injected reconnects, drain/recovery)
#   go test -bench  one iteration of every benchmark — a smoke test that
#                   the benchmark harness still compiles and runs, not a
#                   performance measurement — plus a targeted iteration of
#                   the stage-③ epoch fast path (workers=1) and the full-VC
#                   reference path (Epochs off), so both analysis paths stay
#                   runnable end to end (byte-identity between them is pinned
#                   by TestDifferentialEpochVsReference)
#   pmlint      static PM-misuse checks over the pmrt API; the committed
#               baseline records the intentional findings (the apps embed
#               the paper's Table 2 bugs), so only NEW findings fail
#   pmcheck     bounded crash-point fault-injection smoke: the seeded
#               (buggy) builds must fail crash points (pmcheck exits with
#               the failing-app count), the fixed builds must sweep clean.
#               Covers Fast-Fair and P-Masstree plus the MadFS-POSIX
#               filesystem scenario, whose syscall-level oracles (rename
#               atomicity, torn appends, orphaned inodes) gate both seeded
#               protocol bugs under -budget/-deadline bounds
#   pmcheckd    bounded daemon smoke: start the ingestion daemon on a unix
#               socket, stream one instrumented app trace through the
#               network client with -verify (the daemon's report must be
#               byte-identical to the offline Analyze of the same trace),
#               then SIGTERM-drain and require a clean exit 0
#   pmopt       flush/fence redundancy smoke on two apps: the JSON report
#               must be byte-identical across two runs (the determinism
#               invariant CI relies on), and one bounded -apply must elide
#               the P-Masstree top-tier site with every safety gate (race
#               byte-identity, full crash sweep, journal-aligned image
#               differential) green — pmopt exits 1 on any gate failure
set -eux

go vet ./...
go build ./...
go test ./...
go test -race . ./internal/hawkset ./internal/sched ./internal/pmcheckd
go test -run '^$' -bench . -benchtime 1x ./...
go test -run '^$' -bench 'BenchmarkParallelAnalysis/.*/(workers=1|reference)$' -benchtime 1x .
go run ./cmd/pmlint -baseline pmlint.baseline ./...

# Trace round-trip smoke: a stored trace must BE the trace. Capture once per
# format version, re-analyze the file through the streaming decoder, and
# require the JSON report to be byte-identical to the in-process analysis of
# the same run; then one targeted iteration of the codec benchmark so the
# decode path stays runnable under the harness.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
for fmt in "1" "2" "2 -trace-compress"; do
    # shellcheck disable=SC2086 # $fmt intentionally splits into flags
    go run ./cmd/hawkset -app Fast-Fair -ops 1000 -seed 7 \
        -trace-out "$TRACE_TMP/t.hwkt" -trace-format $fmt \
        -json "$TRACE_TMP/inproc.json"
    go run ./cmd/hawkset -app Fast-Fair -ops 1000 -seed 7 \
        -trace-in "$TRACE_TMP/t.hwkt" -json "$TRACE_TMP/file.json"
    diff "$TRACE_TMP/inproc.json" "$TRACE_TMP/file.json"
    go run ./cmd/tracedump -head 3 "$TRACE_TMP/t.hwkt" > /dev/null
done
go test -run '^$' -bench 'BenchmarkTraceCodec/decode' -benchtime 1x .

if go run ./cmd/pmcheck -app Fast-Fair -ops 800 -inject -budget 8 -deadline 60s; then
    echo "ci: buggy Fast-Fair crash campaign unexpectedly clean" >&2
    exit 1
fi
go run ./cmd/pmcheck -app Fast-Fair -ops 800 -fixed -inject -budget 8 -deadline 60s
go run ./cmd/pmcheck -app P-Masstree -ops 800 -fixed -inject -strategy fence -budget 8 -deadline 60s

# Filesystem crash-sweep smoke: both seeded FS protocol bugs must surface
# under the bounded targeted campaign; the journaled/ordered fixed variant
# must sweep clean.
if go run ./cmd/pmcheck -app MadFS-POSIX -ops 600 -inject -budget 8 -deadline 60s; then
    echo "ci: buggy MadFS-POSIX crash campaign unexpectedly clean" >&2
    exit 1
fi
go run ./cmd/pmcheck -app MadFS-POSIX -ops 600 -fixed -inject -budget 8 -deadline 60s

# pmopt smoke: deterministic JSON on two apps, then one gated elimination.
PMOPT_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP" "$PMOPT_TMP"' EXIT
for app in P-ART P-Masstree; do
    go run ./cmd/pmopt -app "$app" -ops 400 -seed 1 -json > "$PMOPT_TMP/$app.1.json"
    go run ./cmd/pmopt -app "$app" -ops 400 -seed 1 -json > "$PMOPT_TMP/$app.2.json"
    diff "$PMOPT_TMP/$app.1.json" "$PMOPT_TMP/$app.2.json"
done
go run ./cmd/pmopt -app P-Masstree -ops 400 -seed 1 -apply -budget 8

# pmcheckd daemon smoke: stream through the daemon, diff against offline
# Analyze (-verify), SIGTERM-drain, assert clean exit.
PMCHECKD_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP" "$PMOPT_TMP" "$PMCHECKD_TMP"' EXIT
go build -o "$PMCHECKD_TMP/" ./cmd/pmcheckd ./cmd/pmcheck
"$PMCHECKD_TMP/pmcheckd" -listen "unix:$PMCHECKD_TMP/d.sock" \
    -dir "$PMCHECKD_TMP/store" -tenant-table &
PMCHECKD_PID=$!
i=0
while [ ! -S "$PMCHECKD_TMP/d.sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "ci: pmcheckd never listened" >&2; exit 1; }
    sleep 0.1
done
"$PMCHECKD_TMP/pmcheck" -remote "unix:$PMCHECKD_TMP/d.sock" \
    -app Fast-Fair -ops 800 -verify
kill -TERM "$PMCHECKD_PID"
wait "$PMCHECKD_PID"
