#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   go vet      static checks
#   go build    every package compiles
#   go test     full unit + property + differential suite
#   go test -race   the packages with concurrency: the sharded stage ③
#                   analysis (internal/hawkset, exercised from the root
#                   package's app-workload differential test) and the
#                   cooperative scheduler (internal/sched)
#   go test -bench  one iteration of every benchmark — a smoke test that
#                   the benchmark harness still compiles and runs, not a
#                   performance measurement — plus a targeted iteration of
#                   the stage-③ epoch fast path (workers=1) and the full-VC
#                   reference path (Epochs off), so both analysis paths stay
#                   runnable end to end (byte-identity between them is pinned
#                   by TestDifferentialEpochVsReference)
#   pmlint      static PM-misuse checks over the pmrt API; the committed
#               baseline records the intentional findings (the apps embed
#               the paper's Table 2 bugs), so only NEW findings fail
#   pmcheck     bounded crash-point fault-injection smoke on two apps:
#               the seeded (buggy) build must fail crash points (pmcheck
#               exits with the failing-app count), the fixed build must
#               sweep clean
set -eux

go vet ./...
go build ./...
go test ./...
go test -race . ./internal/hawkset ./internal/sched
go test -run '^$' -bench . -benchtime 1x ./...
go test -run '^$' -bench 'BenchmarkParallelAnalysis/.*/(workers=1|reference)$' -benchtime 1x .
go run ./cmd/pmlint -baseline pmlint.baseline ./...

if go run ./cmd/pmcheck -app Fast-Fair -ops 800 -inject -budget 8 -deadline 60s; then
    echo "ci: buggy Fast-Fair crash campaign unexpectedly clean" >&2
    exit 1
fi
go run ./cmd/pmcheck -app Fast-Fair -ops 800 -fixed -inject -budget 8 -deadline 60s
go run ./cmd/pmcheck -app P-Masstree -ops 800 -fixed -inject -strategy fence -budget 8 -deadline 60s
