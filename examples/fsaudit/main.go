// fsaudit: run HawkSet against MadFS, the PM filesystem with *relaxed*
// crash-consistency guarantees, and inspect the crash image.
//
// MadFS defers block-table durability to an explicit fsync, so its
// persistency-induced races are benign by design — but HawkSet still
// reports them, demonstrating §5.1's point: the tool is application-
// agnostic and flags the races; deciding they are tolerated requires the
// application's contract, which no application-agnostic tool can know.
//
//	go run ./examples/fsaudit
package main

import (
	"fmt"
	"log"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/madfs"
)

func main() {
	e, err := apps.Lookup("MadFS")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== MadFS audit: 2000 zipfian 4 KiB writes, 8 threads ===")
	w := ycsb.Generate(e.Spec(2000), 7)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())

	bd := apps.Breakdown(e, res)
	fmt.Printf("%d reports: %d malign, %d benign, %d FP\n",
		len(res.Reports), bd[apps.Malign], bd[apps.Benign], bd[apps.FalsePositive])
	for _, r := range res.Reports {
		fmt.Printf("  [%s] %s\n", e.Classify(r), r)
	}
	fmt.Println()
	fmt.Println("every report is benign: readers may observe unpersisted block-table")
	fmt.Println("entries, but MadFS only promises durability after fsync — using it in")
	fmt.Println("a crash-consistent application without fsync would make these malign,")
	fmt.Println("which is exactly what HawkSet lets such an application's developer see.")

	// Crash-image inspection: the log is durable, the block table is not.
	fmt.Println()
	fmt.Printf("dirty cache lines at shutdown (never fsynced): %d\n", rt.Pool.DirtyLines())
}
