// pmcheckd: a guided tour of the trace-ingestion daemon.
//
// The example runs the fleet scenario the daemon exists for, entirely in
// one process so it needs no setup:
//
//  1. start a pmcheckd server on a loopback listener, with a per-tenant
//     event budget and its own metrics registry;
//  2. run three instrumented application instances concurrently, each
//     streaming its trace events live into the daemon through the network
//     EventSink client (no instance retains its trace — analysis happens
//     at ingest, on the daemon's per-tenant hawkset.Stream);
//  3. collect each tenant's race report from its Finish exchange; one
//     instance also keeps its trace locally and byte-compares the daemon's
//     document against the offline analysis — the differential invariant
//     that makes the daemon trustworthy;
//  4. drain the daemon (the SIGTERM path) and print the per-tenant metrics
//     table: ingest counters plus the analysis working-set gauges whose
//     flat high-water marks demonstrate bounded memory per tenant.
//
//	go run ./examples/pmcheckd
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/pmcheckd"
	"hawkset/internal/report"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/wipe"
)

func main() {
	fmt.Println("=== step 1: start the daemon ===")
	metrics := obs.NewRegistry()
	srv, err := pmcheckd.NewServer(pmcheckd.Config{
		Dir:                "pmcheckd-example-store",
		Analysis:           hawkset.DefaultConfig(),
		MaxEventsPerTenant: 2_000_000,
		Metrics:            metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("  listening on %s, store in pmcheckd-example-store/\n\n", addr)

	fmt.Println("=== step 2: three instrumented instances stream concurrently ===")
	instances := []struct {
		app  string
		seed int64
	}{
		{"Fast-Fair", 1},
		{"P-CLHT", 2},
		{"WIPE", 3},
	}
	const ops = 2000
	var wg sync.WaitGroup
	docs := make([][]byte, len(instances))
	for i, inst := range instances {
		wg.Add(1)
		go func(i int, app string, seed int64) {
			defer wg.Done()
			doc, err := streamOne(addr, app, seed, ops, i == 0)
			if err != nil {
				log.Fatalf("%s: %v", app, err)
			}
			docs[i] = doc
		}(i, inst.app, inst.seed)
	}
	wg.Wait()
	fmt.Println()

	fmt.Println("=== step 3: every tenant got its report back ===")
	for i, inst := range instances {
		var d report.Document
		if err := json.Unmarshal(docs[i], &d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %3d race report(s), %6d PM accesses analyzed\n",
			inst.app, len(d.Races), d.Stats.PMAccesses)
	}
	fmt.Println()

	fmt.Println("=== step 4: drain (the SIGTERM path) and read the tenant table ===")
	names := srv.TenantNames()
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-20s %10s %10s %14s %8s\n", "TENANT", "SEGMENTS", "EVENTS", "OPEN-STORES", "LINES")
	for _, name := range names {
		snap := srv.TenantSnapshot(name)
		fmt.Printf("  %-20s %10d %10d %14d %8d\n", name,
			snap.Counter("pmcheckd.tenant.segments"),
			snap.Counter("pmcheckd.tenant.events"),
			snap.GaugeMax("hawkset.replay.open_stores"),
			snap.GaugeMax("hawkset.replay.lines"))
	}
	total := metrics.Snapshot()
	fmt.Printf("\n  daemon totals: %d conns, %d segments, %d events, %d streams finished\n",
		total.Counter("pmcheckd.conns"), total.Counter("pmcheckd.segments"),
		total.Counter("pmcheckd.events"), total.Counter("pmcheckd.streams_finished"))
	fmt.Println("\nThe OPEN-STORES/LINES high-water marks are per-tenant working-set")
	fmt.Println("gauges: they stay near the application's live PM footprint no matter")
	fmt.Println("how many events stream through — ingest memory is bounded per tenant.")
}

// streamOne runs one instrumented application instance with its trace
// streamed to the daemon, and returns the daemon's report document. With
// verify the trace is also retained locally and the daemon document is
// byte-compared against the offline analysis.
func streamOne(addr, appName string, seed int64, ops int, verify bool) ([]byte, error) {
	entry, err := apps.Lookup(appName)
	if err != nil {
		return nil, err
	}
	w := ycsb.Generate(entry.Spec(ops), seed)
	workload := fmt.Sprintf("ycsb ops=%d seed=%d", ops, seed)
	tenant := fmt.Sprintf("%s-seed%d", entry.Name, seed)

	rt := apps.NewRuntime(entry, apps.RunConfig{Seed: seed, NoTrace: !verify})
	client, err := pmcheckd.NewClient(rt.Trace.Sites, pmcheckd.ClientConfig{
		Addr: addr, Tenant: tenant, App: entry.Name, Workload: workload,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	rt.EventSink = client.Feed
	if err := apps.RunOn(rt, entry.Factory(rt, false), w); err != nil {
		return nil, err
	}
	doc, err := client.Finish()
	if err != nil {
		return nil, err
	}
	mode := "trace discarded at source"
	if verify {
		res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
		var local bytes.Buffer
		if err := report.New(res, entry.Name, workload, nil).WriteJSON(&local); err != nil {
			return nil, err
		}
		if !bytes.Equal(doc, local.Bytes()) {
			return nil, fmt.Errorf("daemon document differs from offline analysis")
		}
		mode = "verified byte-identical to offline Analyze"
	}
	fmt.Printf("  %-12s streamed as tenant %-18s (%s)\n", entry.Name, tenant, mode)
	return doc, nil
}
