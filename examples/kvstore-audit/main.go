// kvstore-audit: audit two PM key-value stores (the Fast-Fair B+-tree and
// the TurboHash hash table) under a realistic YCSB workload, the way a
// developer would integrate HawkSet into their test cycle (§5.3 argues small
// testing times enable exactly this).
//
// The example runs each store's buggy and fixed variants, prints the
// classified reports, and shows how the TurboHash bug only appears once the
// workload is large enough to fill buckets past their first cache line
// (§5.1: "this bug manifested only in the largest workload we tested").
//
//	go run ./examples/kvstore-audit
package main

import (
	"fmt"
	"log"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"

	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/turbohash"
)

func main() {
	audit("Fast-Fair", 4000)
	fmt.Println()
	audit("TurboHash", 20000)
	fmt.Println()
	coverageDemo()
}

func audit(name string, ops int) {
	e, err := apps.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== auditing %s (%d ops, 8 threads) ===\n", name, ops)
	for _, fixed := range []bool{false, true} {
		res, err := apps.Detect(e, ops, 42, apps.RunConfig{Seed: 42, Fixed: fixed}, hawkset.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		variant := "buggy"
		if fixed {
			variant = "fixed"
		}
		bd := apps.Breakdown(e, res)
		fmt.Printf("%s variant: %d reports (%d malign, %d benign, %d FP)\n",
			variant, len(res.Reports), bd[apps.Malign], bd[apps.Benign], bd[apps.FalsePositive])
		if !fixed {
			for _, id := range apps.FoundBugs(e, res) {
				for _, b := range e.Bugs {
					if b.ID == id {
						fmt.Printf("  bug #%d: %s\n", id, b.Description)
						break
					}
				}
			}
			for _, r := range res.Reports {
				if e.Classify(r) == apps.Malign {
					fmt.Printf("    %s\n", r)
				}
			}
		}
	}
}

// coverageDemo shows the workload-coverage dependence of bug #3.
func coverageDemo() {
	e, err := apps.Lookup("TurboHash")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== TurboHash bug #3 needs coverage (buckets must fill) ===")
	for _, ops := range []int{1000, 5000, 20000} {
		res, err := apps.Detect(e, ops, 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		found := "not found"
		for _, id := range apps.FoundBugs(e, res) {
			if id == 3 {
				found = "FOUND"
			}
		}
		fmt.Printf("  %6d ops: bug #3 %s\n", ops, found)
	}
}
