// Quickstart: the paper's motivating example (Figure 1c) as a runnable
// program.
//
// Two threads share a PM variable X protected by mutex A. Thread T1 stores X
// inside the critical section but persists it *outside*; thread T2 reads X
// inside the critical section. Classic lockset analysis sees the common lock
// and stays silent — HawkSet's effective lockset sees the persistency escape
// the critical section and reports the persistency-induced race, without
// ever observing the racy interleaving.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
)

func main() {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 20})
	mu := rt.NewMutex("A")

	err := rt.Run(func(c *pmrt.Ctx) {
		x := c.Alloc(8) // X: a persistent variable

		t1 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu)
			c.Store8(x, 42) // store X   (lockset {A})
			c.Unlock(mu)
			c.Persist(x, 8) // persist X (lockset {} — outside the section!)
		})
		t2 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu)
			v := c.Load8(x) // load X    (lockset {A})
			c.Unlock(mu)
			_ = v // e.g. reply to a client — a side effect that survives a crash
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("execution finished: %d trace events\n\n", rt.Trace.Len())

	cfg := hawkset.DefaultConfig()
	cfg.IRH = false // tiny program: no allocator-initialization noise to prune
	res := hawkset.Analyze(rt.Trace, cfg)

	fmt.Printf("HawkSet found %d persistency-induced race(s):\n", len(res.Reports))
	for _, r := range res.Reports {
		fmt.Printf("  store %s  <->  load %s\n", r.StoreFrame, r.LoadFrame)
		fmt.Printf("    the store's unpersisted window (%s) is not protected by any\n", r.EndKind)
		fmt.Println("    lock the loader holds: a crash between the load and the persist")
		fmt.Println("    keeps the load's side effects but loses the stored value.")
	}

	// The correct version: persist inside the critical section.
	rt2 := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 20})
	mu2 := rt2.NewMutex("A")
	err = rt2.Run(func(c *pmrt.Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu2)
			c.Store8(x, 42)
			c.Persist(x, 8) // persist inside the section
			c.Unlock(mu2)
		})
		t2 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu2)
			_ = c.Load8(x)
			c.Unlock(mu2)
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		log.Fatal(err)
	}
	res2 := hawkset.Analyze(rt2.Trace, cfg)
	fmt.Printf("\nafter moving the persist inside the critical section: %d report(s)\n", len(res2.Reports))
}
