// comparison: a laptop-scale rerun of Table 3 — HawkSet vs the
// observation-based (PMRace-style) baseline on Fast-Fair.
//
// For every seed workload, HawkSet executes the application once and
// analyzes the trace; the baseline runs a fuzzing campaign with delay
// injection on a device with hardware-realistic cache eviction, and must
// observe a load of visible-but-unpersisted data to report anything. The
// expected-time-to-race metric of §5.2 (closed form t·(e/2+1)) quantifies
// the gap.
//
//	go run ./examples/comparison            # 24 seeds (about a minute)
//	go run ./examples/comparison 240        # paper-scale corpus
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"hawkset/internal/expmt"

	_ "hawkset/internal/apps/fastfair"
)

func main() {
	seeds := 24
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("usage: comparison [seed count]; got %q", os.Args[1])
		}
		seeds = n
	}
	fmt.Printf("comparing HawkSet vs the observation baseline on Fast-Fair (%d seeds)...\n\n", seeds)
	cfg := expmt.DefaultTable3Config()
	cfg.Seeds = seeds
	res, err := expmt.Table3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expmt.FormatTable3(res))
	fmt.Println("reading the table:")
	fmt.Println(" - HawkSet reports both bugs from single executions whenever the workload")
	fmt.Println("   covers the racy operations; it never needs to observe the interleaving.")
	fmt.Println(" - the baseline must catch a load inside a short unpersisted window; the")
	fmt.Println("   rare tree-growth branch behind bug #2 is effectively out of its reach,")
	fmt.Println("   matching the paper (PMRace: 0 of 240 seeds, 'Avg. Time to Race = inf').")
}
