// crashsweep: a guided tour of the crash-point fault-injection campaign.
//
// The example records one buggy P-Masstree execution, then walks the three
// steps the harness (internal/crashinject) automates:
//
//  1. enumerate crash points from the recorded device-op journal — here
//     with the targeted strategy, which crashes only inside the unpersisted
//     windows of HawkSet's race reports;
//  2. materialize the crash image at each sampled point by replaying the
//     journal (the application never re-runs) and validate it — always-safe
//     structural checks everywhere, full volatile-vs-persistent comparison
//     at quiescent points;
//  3. drive the application's own recovery path on every image, with
//     panics and livelocks contained as inconsistent verdicts.
//
// The same campaign against the Fixed variant tests zero failing points:
// the buggy-vs-fixed differential that separates "a race was reported"
// from "a crash there actually loses data".
//
//	go run ./examples/crashsweep
package main

import (
	"fmt"
	"log"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"

	_ "hawkset/internal/apps/pmasstree"
)

func main() {
	e, err := apps.Lookup("P-Masstree")
	if err != nil {
		log.Fatal(err)
	}
	const ops, seed = 2000, 1

	fmt.Println("=== step 1: record the execution once, with the device-op journal on ===")
	prep, err := crashinject.Prepare(e, ops, seed, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  journal: %d device ops, %d operation spans, setup ends at position %d\n",
		len(prep.Runtime.Ops), len(prep.Spans), prep.SetupEnd)
	fmt.Printf("  analysis: %d race reports, %d store windows\n\n",
		len(prep.Analysis().Reports), len(prep.Windows()))

	fmt.Println("=== step 2: targeted campaign — crash inside the reported windows ===")
	cfg := crashinject.Config{Strategy: crashinject.Targeted, Budget: 48, Seed: seed}
	camp, err := crashinject.RunCampaign(prep.Target(0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d points enumerated, %d tested (budget), %d failed\n",
		camp.Enumerated, camp.Tested, camp.Failed)
	for i, p := range camp.Failures() {
		if i >= 4 {
			fmt.Printf("  ... and %d more failing points\n", camp.Failed-i)
			break
		}
		fmt.Printf("  crash after op %d (%s, event %d): %s\n", p.Pos, p.Op, p.Seq, p.Inconsistent)
	}
	fmt.Println()

	fmt.Println("=== step 3: per-bug differential against the Fixed variant ===")
	diff, err := crashinject.Differential(e, ops, seed, crashinject.Config{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range diff.Buggy {
		fmt.Printf("  bug #%-2d (%s): %d/%d crash points fail in the buggy build\n",
			b.ID, b.Description, b.Failed, b.Tested)
	}
	fmt.Printf("  fixed build:  %d/%d crash points fail\n", diff.Fixed.Failed, diff.Fixed.Tested)
	if ok, problems := diff.Holds(); ok {
		fmt.Println("  differential HOLDS: every seeded bug is crash-demonstrable, the fix eliminates all of them")
	} else {
		fmt.Printf("  differential BROKEN: %v\n", problems)
	}
}
