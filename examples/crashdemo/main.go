// crashdemo: from race report to demonstrated data loss.
//
// The example runs the buggy Fast-Fair under a workload, shows HawkSet's
// race reports, then inspects the crash image: the unpersisted root-pointer
// swap (bug #2) orphans the entire post-growth tree, and torn splits
// (bug #1) leave dangling or duplicated child pointers. The Fixed variant's
// image validates clean — the repair suggested by the race reports is
// exactly persisting the flagged stores.
//
//	go run ./examples/crashdemo
package main

import (
	"fmt"
	"log"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"

	_ "hawkset/internal/apps/fastfair"
)

func main() {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		log.Fatal(err)
	}
	const ops, seed = 4000, 42

	fmt.Println("=== step 1: HawkSet reports the races (no crash needed) ===")
	res, err := apps.Detect(e, ops, seed, apps.RunConfig{Seed: seed}, hawkset.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Reports {
		if e.Classify(r) == apps.Malign {
			fmt.Printf("  [MR] %s\n", r)
		}
	}

	fmt.Println("\n=== step 2: the crash image proves the loss ===")
	violations, err := apps.RunAndValidate(e, ops, seed, apps.RunConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range violations {
		if i >= 8 {
			fmt.Printf("  ... and %d more violations\n", len(violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}

	fmt.Println("\n=== step 3: persisting the flagged stores fixes it ===")
	fixed, err := apps.RunAndValidate(e, ops, seed, apps.RunConfig{Seed: seed, Fixed: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fixed variant violations: %d\n", len(fixed))
}
