module hawkset

go 1.23
